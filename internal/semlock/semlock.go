// Package semlock implements the semantic lock tables of the paper's
// Tables 2, 5 and 8: key locks, size/empty/endpoint locks, and key-range
// locks, each mapping abstract state to the set of top-level
// transactions that have read it.
//
// Read operations take locks while executing (inside the collection's
// open-nested critical section); write operations detect conflicts at
// commit time by violating every other holder of the abstract state
// they change. The tables carry no internal synchronization: each
// transactional collection instance guards its tables with the same
// short critical section that protects the wrapped structure, which is
// this implementation's stand-in for the paper's low-level open-nested
// memory transactions (DESIGN.md §4, substitution 3).
package semlock

import (
	"fmt"

	"tcc/internal/stm"
)

// Owner identifies a lock-holding top-level transaction; violating an
// owner aborts that transaction (paper §4, program-directed abort).
type Owner = *stm.Handle

// orderedOwners copies the owners in set into buf sorted ascending by
// Handle.ID — the canonical violation order. Go map iteration would
// randomize the order in which victims are violated, and with it the
// event order of every trace taken under contention; sorting by the
// process-global handle id keeps deterministic-replay runs
// byte-identical. Handles created outside a transaction have id 0 and
// sort together; their relative order is unspecified (tests only).
func orderedOwners(buf []Owner, set map[Owner]struct{}) []Owner {
	for o := range set {
		buf = append(buf, o)
	}
	sortOwners(buf)
	return buf
}

// sortOwners orders buf ascending by Handle.ID. Insertion sort: owner
// sets are a handful of transactions, and unlike sort.Slice this keeps
// the sweep allocation-free (no interface boxing, no closure).
func sortOwners(buf []Owner) {
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j].ID() < buf[j-1].ID(); j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
}

// recycleSweep clears a sweep buffer for reuse: the Owner pointers are
// dropped so a recycled buffer does not pin dead transaction handles,
// but the backing array is kept — the same recycling discipline as the
// STM's level and commit scratch pools. Each table owns one sweep
// buffer; the collection's critical section that guards the table also
// serializes the sweeps, so a single buffer per table suffices.
func recycleSweep(buf []Owner) []Owner {
	for i := range buf {
		buf[i] = nil
	}
	return buf[:0]
}

// OwnerSet is a single abstract lock — the size lock, the empty lock,
// or a first/last endpoint lock — held by any number of readers.
type OwnerSet struct {
	owners map[Owner]struct{}
	sweep  []Owner // recycled violation-sweep scratch (see recycleSweep)
}

// NewOwnerSet creates an empty lock.
func NewOwnerSet() *OwnerSet {
	return &OwnerSet{owners: make(map[Owner]struct{})}
}

// Lock records o as a holder; re-locking is idempotent.
func (s *OwnerSet) Lock(o Owner) { s.owners[o] = struct{}{} }

// Unlock removes o; unlocking a non-holder is a no-op.
func (s *OwnerSet) Unlock(o Owner) { delete(s.owners, o) }

// Holds reports whether o holds the lock.
func (s *OwnerSet) Holds(o Owner) bool {
	_, ok := s.owners[o]
	return ok
}

// Len returns the number of holders.
func (s *OwnerSet) Len() int { return len(s.owners) }

// ViolateOthers aborts every holder other than self — in ascending
// handle-id order, for deterministic traces — and returns how many
// Violate calls actually landed on still-active transactions.
func (s *OwnerSet) ViolateOthers(self Owner, reason string) int {
	n := 0
	s.sweep = orderedOwners(s.sweep, s.owners)
	for _, o := range s.sweep {
		if o == self {
			continue
		}
		if o.Violate(reason) {
			n++
		}
	}
	s.sweep = recycleSweep(s.sweep)
	return n
}

// KeyTable is the key2lockers table of paper Table 3: for each key, the
// set of transactions that have read that key's mapping (or its
// absence).
type KeyTable[K comparable] struct {
	lockers map[K]map[Owner]struct{}
	// keyed makes ViolateOthers append the conflicting key to the
	// violation reason, so conflict profiles attribute semantic aborts
	// to individual keys. Off by default: formatting the key costs an
	// allocation per violated transaction, and it splits one logical
	// hotspot across as many heatmap rows as there are hot keys.
	keyed bool
	sweep []Owner // recycled violation-sweep scratch (see recycleSweep)
}

// NewKeyTable creates an empty table.
func NewKeyTable[K comparable]() *KeyTable[K] {
	return &KeyTable[K]{lockers: make(map[K]map[Owner]struct{})}
}

// SetKeyedReasons toggles per-key detail in violation reasons (see the
// keyed field). Call during setup, before concurrent use.
func (t *KeyTable[K]) SetKeyedReasons(on bool) { t.keyed = on }

// Lock records o as a reader of key k.
func (t *KeyTable[K]) Lock(k K, o Owner) {
	s := t.lockers[k]
	if s == nil {
		s = make(map[Owner]struct{})
		t.lockers[k] = s
	}
	s[o] = struct{}{}
}

// Unlock removes o as a reader of k, dropping empty entries so the
// table does not grow with dead keys.
func (t *KeyTable[K]) Unlock(k K, o Owner) {
	s := t.lockers[k]
	if s == nil {
		return
	}
	delete(s, o)
	if len(s) == 0 {
		delete(t.lockers, k)
	}
}

// Holds reports whether o holds a lock on k.
func (t *KeyTable[K]) Holds(k K, o Owner) bool {
	_, ok := t.lockers[k][o]
	return ok
}

// Locked reports whether any transaction holds a lock on k.
func (t *KeyTable[K]) Locked(k K) bool { return len(t.lockers[k]) > 0 }

// ViolateOthers aborts every reader of k other than self. With keyed
// reasons enabled the reason each victim records carries the key, e.g.
// `TestMap: key conflict [key=17]`.
func (t *KeyTable[K]) ViolateOthers(k K, self Owner, reason string) int {
	n := 0
	detailed := ""
	t.sweep = orderedOwners(t.sweep, t.lockers[k])
	for _, o := range t.sweep {
		if o == self {
			continue
		}
		if t.keyed && detailed == "" {
			detailed = fmt.Sprintf("%s [key=%v]", reason, k)
		}
		r := reason
		if detailed != "" {
			r = detailed
		}
		if o.Violate(r) {
			n++
		}
	}
	t.sweep = recycleSweep(t.sweep)
	return n
}

// RangeEntry is one key-range lock, typically owned by an iterator or a
// navigation query: the interval of keys whose membership the owner has
// observed. Lo and Hi are nil when unbounded; Lo is inclusive unless
// LoExcl is set (a HigherKey query's strict bound), Hi is inclusive
// unless HiExcl is set (a view's exclusive upper bound or a LowerKey
// query's strict bound).
type RangeEntry[K comparable] struct {
	Lo, Hi *K
	LoExcl bool
	HiExcl bool
	Owner  Owner
}

// RangeTable is the rangeLockers set of paper Table 6. As the paper
// does, it is a simple set scanned linearly for conflicts — "an
// alternative would have been to use an interval tree, but the extra
// complexity and potential overhead seemed unnecessary for the common
// case" (§3.2).
type RangeTable[K comparable] struct {
	cmp     func(a, b K) int
	entries map[*RangeEntry[K]]struct{}
	sweep   []Owner // recycled violation-sweep scratch (see recycleSweep)
}

// NewRangeTable creates an empty table ordered by cmp.
func NewRangeTable[K comparable](cmp func(a, b K) int) *RangeTable[K] {
	return &RangeTable[K]{cmp: cmp, entries: make(map[*RangeEntry[K]]struct{})}
}

// Add inserts e; the caller keeps the pointer and may widen e's bounds
// in place as its iterator advances (under the same critical section
// that guards the table).
func (t *RangeTable[K]) Add(e *RangeEntry[K]) { t.entries[e] = struct{}{} }

// Remove deletes e.
func (t *RangeTable[K]) Remove(e *RangeEntry[K]) { delete(t.entries, e) }

// Len returns the number of range locks.
func (t *RangeTable[K]) Len() int { return len(t.entries) }

// Covers reports whether e's interval contains k.
func (t *RangeTable[K]) Covers(e *RangeEntry[K], k K) bool {
	if e.Lo != nil {
		c := t.cmp(k, *e.Lo)
		if c < 0 || (c == 0 && e.LoExcl) {
			return false
		}
	}
	if e.Hi != nil {
		c := t.cmp(k, *e.Hi)
		if c > 0 || (c == 0 && e.HiExcl) {
			return false
		}
	}
	return true
}

// ViolateCovering aborts the owner of every range containing k, other
// than self, in ascending owner handle-id order (see orderedOwners).
func (t *RangeTable[K]) ViolateCovering(k K, self Owner, reason string) int {
	victims := t.sweep
	for e := range t.entries {
		if e.Owner == self || !t.Covers(e, k) {
			continue
		}
		victims = append(victims, e.Owner)
	}
	sortOwners(victims)
	n := 0
	var prev Owner
	for _, o := range victims {
		if o == prev {
			// Several of one owner's ranges may cover k; one Violate is
			// enough and keeps the count meaningful.
			continue
		}
		prev = o
		if o.Violate(reason) {
			n++
		}
	}
	t.sweep = recycleSweep(victims)
	return n
}
