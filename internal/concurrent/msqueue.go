package concurrent

import "sync/atomic"

// MSQueue is the Michael-Scott non-blocking concurrent queue — the
// algorithm behind java.util.concurrent.ConcurrentLinkedQueue that the
// paper's §2.2 cites (Michael & Scott, PODC '96). It is the
// fine-grained, non-transactional comparison point: individually
// linearizable operations with no way to compose several atomically,
// which is exactly the gap TransactionalQueue fills.
type MSQueue[T any] struct {
	head atomic.Pointer[msNode[T]]
	tail atomic.Pointer[msNode[T]]
	size atomic.Int64
}

type msNode[T any] struct {
	val  T
	next atomic.Pointer[msNode[T]]
}

// NewMSQueue creates an empty queue.
func NewMSQueue[T any]() *MSQueue[T] {
	q := &MSQueue[T]{}
	dummy := &msNode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue appends v at the tail (lock-free).
func (q *MSQueue[T]) Enqueue(v T) {
	n := &msNode[T]{val: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail is lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// Dequeue removes and returns the head element (lock-free).
func (q *MSQueue[T]) Dequeue() (T, bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				var zero T
				return zero, false
			}
			// Tail lagging behind a concurrent enqueue; help it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return next.val, true
		}
	}
}

// Peek returns the head element without removing it. The result is a
// linearizable snapshot that may be stale by return time (the standard
// concurrent-queue caveat).
func (q *MSQueue[T]) Peek() (T, bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail && next == nil {
			var zero T
			return zero, false
		}
		if next != nil {
			return next.val, true
		}
	}
}

// Size returns the approximate number of queued elements (exact when
// quiescent).
func (q *MSQueue[T]) Size() int { return int(q.size.Load()) }
