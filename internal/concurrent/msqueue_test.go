package concurrent

import (
	"sync"
	"testing"
)

func TestMSQueueSequential(t *testing.T) {
	q := NewMSQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	if q.Size() != 100 {
		t.Fatalf("size = %d", q.Size())
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("peek = (%d,%v)", v, ok)
	}
	for i := 0; i < 100; i++ {
		if v, ok := q.Dequeue(); !ok || v != i {
			t.Fatalf("dequeue = (%d,%v), want %d", v, ok, i)
		}
	}
	if q.Size() != 0 {
		t.Fatalf("size after drain = %d", q.Size())
	}
}

func TestMSQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewMSQueue[int]()
	const producers, per = 4, 500
	var pg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pg.Add(1)
		go func(p int) {
			defer pg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(p*per + i)
			}
		}(p)
	}
	var mu sync.Mutex
	seen := map[int]int{}
	var cg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					select {
					case <-stop:
						// Final drain after producers finished.
						for {
							v, ok := q.Dequeue()
							if !ok {
								return
							}
							mu.Lock()
							seen[v]++
							mu.Unlock()
						}
					default:
						continue
					}
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}()
	}
	pg.Wait()
	close(stop)
	cg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("consumed %d distinct, want %d", len(seen), producers*per)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("element %d consumed %d times", v, n)
		}
	}
}

func TestMSQueuePerProducerFIFO(t *testing.T) {
	// Elements from one producer must come out in that producer's
	// order (FIFO holds per enqueuer).
	q := NewMSQueue[[2]int]()
	const producers, per = 3, 300
	var pg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pg.Add(1)
		go func(p int) {
			defer pg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue([2]int{p, i})
			}
		}(p)
	}
	pg.Wait()
	last := map[int]int{0: -1, 1: -1, 2: -1}
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if v[1] <= last[v[0]] {
			t.Fatalf("producer %d out of order: %d after %d", v[0], v[1], last[v[0]])
		}
		last[v[0]] = v[1]
	}
	for p, l := range last {
		if l != per-1 {
			t.Fatalf("producer %d lost elements (last=%d)", p, l)
		}
	}
}
