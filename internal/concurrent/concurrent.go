// Package concurrent provides coarse-lock thread-safe wrappers around
// the plain collections — the moral equivalent of Java's
// Collections.synchronizedMap / synchronized blocks that the paper's
// "Java" configurations use. They are the non-transactional baselines:
// individually atomic operations, no way to compose several operations
// atomically except by holding an external lock across them (which is
// exactly what the TestCompound experiment measures).
package concurrent

import (
	"sync"

	"tcc/internal/collections"
)

// SyncMap is a Map guarded by one RWMutex.
type SyncMap[K comparable, V any] struct {
	mu sync.RWMutex
	m  collections.Map[K, V]
}

// NewSyncMap wraps m; the wrapper assumes exclusive ownership.
func NewSyncMap[K comparable, V any](m collections.Map[K, V]) *SyncMap[K, V] {
	return &SyncMap[K, V]{m: m}
}

// Get returns the value mapped to k.
func (s *SyncMap[K, V]) Get(k K) (V, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.Get(k)
}

// ContainsKey reports whether k is mapped.
func (s *SyncMap[K, V]) ContainsKey(k K) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.ContainsKey(k)
}

// Put maps k to v, returning the previous value if present.
func (s *SyncMap[K, V]) Put(k K, v V) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Put(k, v)
}

// Remove deletes k's mapping, returning the removed value if present.
func (s *SyncMap[K, V]) Remove(k K) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Remove(k)
}

// Size returns the number of mappings.
func (s *SyncMap[K, V]) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.Size()
}

// ForEach visits every mapping under the lock until fn returns false;
// fn must not call back into the map.
func (s *SyncMap[K, V]) ForEach(fn func(k K, v V) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.m.ForEach(fn)
}

// Atomically runs fn with the map exclusively locked — the coarse-lock
// composition idiom the Java TestCompound baseline uses.
func (s *SyncMap[K, V]) Atomically(fn func(m collections.Map[K, V])) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.m)
}

// SyncSortedMap is a SortedMap guarded by one RWMutex.
type SyncSortedMap[K comparable, V any] struct {
	mu sync.RWMutex
	m  collections.SortedMap[K, V]
}

// NewSyncSortedMap wraps m; the wrapper assumes exclusive ownership.
func NewSyncSortedMap[K comparable, V any](m collections.SortedMap[K, V]) *SyncSortedMap[K, V] {
	return &SyncSortedMap[K, V]{m: m}
}

// Get returns the value mapped to k.
func (s *SyncSortedMap[K, V]) Get(k K) (V, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.Get(k)
}

// Put maps k to v, returning the previous value if present.
func (s *SyncSortedMap[K, V]) Put(k K, v V) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Put(k, v)
}

// Remove deletes k's mapping, returning the removed value if present.
func (s *SyncSortedMap[K, V]) Remove(k K) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Remove(k)
}

// Size returns the number of mappings.
func (s *SyncSortedMap[K, V]) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.Size()
}

// FirstKey returns the minimum key.
func (s *SyncSortedMap[K, V]) FirstKey() (K, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.FirstKey()
}

// LastKey returns the maximum key.
func (s *SyncSortedMap[K, V]) LastKey() (K, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.LastKey()
}

// AscendRange visits mappings with lo <= key < hi under the read lock.
func (s *SyncSortedMap[K, V]) AscendRange(lo, hi *K, fn func(k K, v V) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.m.AscendRange(lo, hi, fn)
}

// Atomically runs fn with the map exclusively locked.
func (s *SyncSortedMap[K, V]) Atomically(fn func(m collections.SortedMap[K, V])) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.m)
}

// SyncQueue is a Queue guarded by one mutex.
type SyncQueue[T any] struct {
	mu sync.Mutex
	q  collections.Queue[T]
}

// NewSyncQueue wraps q; the wrapper assumes exclusive ownership.
func NewSyncQueue[T any](q collections.Queue[T]) *SyncQueue[T] {
	return &SyncQueue[T]{q: q}
}

// Enqueue appends v at the tail.
func (s *SyncQueue[T]) Enqueue(v T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.q.Enqueue(v)
}

// Dequeue removes and returns the head element.
func (s *SyncQueue[T]) Dequeue() (T, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Dequeue()
}

// Peek returns the head element without removing it.
func (s *SyncQueue[T]) Peek() (T, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Peek()
}

// Size returns the number of queued elements.
func (s *SyncQueue[T]) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Size()
}
