package concurrent

import (
	"sync"
	"testing"

	"tcc/internal/collections"
)

func TestSyncMapConcurrentAccess(t *testing.T) {
	m := NewSyncMap[int, int](collections.NewHashMap[int, int]())
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := w*per + i
				m.Put(k, k)
				if v, ok := m.Get(k); !ok || v != k {
					t.Errorf("get(%d) = (%d,%v)", k, v, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Size() != workers*per {
		t.Fatalf("size = %d, want %d", m.Size(), workers*per)
	}
	count := 0
	m.ForEach(func(int, int) bool {
		count++
		return true
	})
	if count != workers*per {
		t.Fatalf("ForEach visited %d", count)
	}
}

func TestSyncMapAtomicallyComposes(t *testing.T) {
	m := NewSyncMap[int, int](collections.NewHashMap[int, int]())
	m.Put(0, 1)
	m.Put(1, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			m.Atomically(func(mm collections.Map[int, int]) {
				a, _ := mm.Get(0)
				b, _ := mm.Get(1)
				mm.Put(0, b)
				mm.Put(1, a)
			})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ok := false
			m.Atomically(func(mm collections.Map[int, int]) {
				a, _ := mm.Get(0)
				b, _ := mm.Get(1)
				ok = a+b == 1
			})
			if !ok {
				t.Error("torn compound state")
				return
			}
		}
	}()
	// Let the mover finish, then stop the checker.
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	// The mover always finishes; the checker needs the stop signal.
	// Close stop once the mover's 500 iterations are plausibly done.
	close(stop)
	<-wgDone
}

func TestSyncSortedMapNavigation(t *testing.T) {
	m := NewSyncSortedMap[int, string](collections.NewTreeMap[int, string]())
	m.Put(2, "b")
	m.Put(1, "a")
	m.Put(3, "c")
	if k, _ := m.FirstKey(); k != 1 {
		t.Fatalf("first = %d", k)
	}
	if k, _ := m.LastKey(); k != 3 {
		t.Fatalf("last = %d", k)
	}
	var got []int
	lo, hi := 1, 3
	m.AscendRange(&lo, &hi, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("range = %v", got)
	}
	if v, ok := m.Remove(2); !ok || v != "b" {
		t.Fatalf("remove = (%q,%v)", v, ok)
	}
	if m.Size() != 2 {
		t.Fatalf("size = %d", m.Size())
	}
}

func TestSyncQueueConcurrent(t *testing.T) {
	q := NewSyncQueue[int](collections.NewLinkedQueue[int]())
	var wg sync.WaitGroup
	const producers, per = 4, 100
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(p*per + i)
			}
		}(p)
	}
	wg.Wait()
	if q.Size() != producers*per {
		t.Fatalf("size = %d", q.Size())
	}
	seen := map[int]bool{}
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*per {
		t.Fatalf("drained %d", len(seen))
	}
}

func TestSyncMapContainsAndRemove(t *testing.T) {
	m := NewSyncMap[string, int](collections.NewHashMap[string, int]())
	m.Put("a", 1)
	if !m.ContainsKey("a") || m.ContainsKey("b") {
		t.Fatal("containsKey wrong")
	}
	if v, ok := m.Remove("a"); !ok || v != 1 {
		t.Fatalf("remove = (%d,%v)", v, ok)
	}
	if m.ContainsKey("a") {
		t.Fatal("removed key present")
	}
}

func TestSyncSortedMapGetAndAtomically(t *testing.T) {
	m := NewSyncSortedMap[int, int](collections.NewTreeMap[int, int]())
	m.Put(1, 10)
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	m.Atomically(func(mm collections.SortedMap[int, int]) {
		mm.Put(2, 20)
		mm.Put(3, 30)
	})
	if m.Size() != 3 {
		t.Fatalf("size = %d", m.Size())
	}
}

func TestSyncQueuePeek(t *testing.T) {
	q := NewSyncQueue[int](collections.NewLinkedQueue[int]())
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	q.Enqueue(7)
	if v, ok := q.Peek(); !ok || v != 7 {
		t.Fatalf("peek = (%d,%v)", v, ok)
	}
	if q.Size() != 1 {
		t.Fatal("peek consumed the element")
	}
}
