// Package tcc is a from-scratch Go reproduction of "Transactional
// Collection Classes" (Carlstrom, McDonald, Carbin, Kozyrakis,
// Olukotun — PPoPP 2007).
//
// The repository contains the full stack the paper builds on:
//
//   - internal/stm — a TL2-style software transactional memory with the
//     rich semantics the paper requires: closed nesting with partial
//     rollback, open nesting, commit/abort handlers and
//     program-directed abort;
//   - internal/sim — a deterministic virtual-CPU simulator standing in
//     for the paper's execution-driven CMP simulator;
//   - internal/collections — java.util-style HashMap, red-black
//     TreeMap, and Queue implementations;
//   - internal/stmcol — STM-instrumented variants (the paper's failing
//     "Atomos HashMap / TreeMap" baselines);
//   - internal/semlock — semantic lock tables (key, size, empty, range,
//     endpoint);
//   - internal/core — the contribution: TransactionalMap,
//     TransactionalSortedMap, TransactionalQueue, sets, and the
//     open-nested Counter and UIDGen;
//   - internal/jbb — the high-contention single-warehouse SPECjbb2000
//     variant of the paper's §6.3;
//   - internal/harness and cmd/tccbench — CPU sweeps that regenerate
//     the paper's Figures 1-4.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory
// and substitutions, and EXPERIMENTS.md for measured-vs-paper results.
// The benchmarks in bench_test.go regenerate every figure
// (BenchmarkFigure1..4) and the §5.1 design-choice ablations.
package tcc
