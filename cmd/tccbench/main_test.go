package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tcc/internal/harness"
	"tcc/internal/obs"
	"tcc/internal/stm"
	"tcc/internal/stmcol"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestBuildFigureSmoke runs each figure on a tiny configuration — the
// same in-process path `tccbench -fig N -ops 64 -cpus 1,2` takes — so a
// regression anywhere in the harness or workloads fails fast here
// rather than only in a full benchmark run.
func TestBuildFigureSmoke(t *testing.T) {
	cpus := []int{1, 2}
	for _, n := range []int{1, 2, 3, 4, 6, 7} {
		fig := buildFigure(n, cpus, 64, 7, harness.FigureOptions{})
		out := fig.String()
		if out == "" {
			t.Errorf("figure %d produced no output", n)
		}
		for _, cpu := range []string{"1", "2"} {
			if !strings.Contains(out, cpu) {
				t.Errorf("figure %d output missing CPU row %s:\n%s", n, cpu, out)
			}
		}
		if stats := fig.StatsString(); stats == "" {
			t.Errorf("figure %d produced no stats output", n)
		}
	}
}

// TestReadRatioFigureSnapshotStats: the figure 7 snapshot
// configurations actually ride the MVCC-lite path — their runs record
// snapshot commits with zero read-side lost work, and the retry
// configurations record none.
func TestReadRatioFigureSnapshotStats(t *testing.T) {
	fig := buildFigure(7, []int{2}, 128, 7, harness.FigureOptions{})
	for _, s := range fig.Series {
		st := s.Stats[2]
		snap := strings.Contains(s.Name, "snapshot")
		if snap && st.SnapshotCommits == 0 {
			t.Errorf("series %q recorded no snapshot commits", s.Name)
		}
		if !snap && st.SnapshotCommits != 0 {
			t.Errorf("series %q recorded %d snapshot commits on the retry path", s.Name, st.SnapshotCommits)
		}
		if stats := fig.StatsString(); snap && !strings.Contains(stats, "snapshot=") {
			t.Errorf("stats rendering missing snapshot counts:\n%s", stats)
		}
	}
}

// TestBuildFigureDeterministic: same seed, same figure — byte-identical
// output, the property the whole virtual-CPU simulator exists for.
func TestBuildFigureDeterministic(t *testing.T) {
	a := buildFigure(1, []int{1, 2}, 64, 7, harness.FigureOptions{}).String()
	b := buildFigure(1, []int{1, 2}, 64, 7, harness.FigureOptions{}).String()
	if a != b {
		t.Errorf("same seed produced different output:\n%s\n---\n%s", a, b)
	}
}

// TestBuildFigureProfiled exercises the -profile path: the profiled
// figure must carry per-run reports and render a heatmap.
func TestBuildFigureProfiled(t *testing.T) {
	fig := buildFigure(1, []int{2}, 64, 7, harness.FigureOptions{Profile: true})
	for _, s := range fig.Series {
		if s.Profiles == nil || s.Profiles[2] == nil {
			t.Fatalf("series %q has no profile", s.Name)
		}
	}
	rep := harness.BuildReport("t", fig)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("report JSON invalid")
	}
}

// goldenConfig is a hash-free contended workload for the golden trace:
// every transaction bumps a shared labelled counter and cycles the
// shared queue, so a 2-CPU sim run produces commits, conflicts and
// backoffs at exactly the same virtual cycles every run. (The TestMap
// workloads cannot be golden-tested byte-for-byte: stmcol's HashMap
// seeds maphash per process, so bucket assignments — and therefore
// read/write-set sizes — vary across processes.)
func goldenConfig() harness.Config {
	return harness.Config{
		Name: "golden",
		Setup: func(pl harness.Platform) func(w *harness.Worker) {
			counter := stm.NewVar(0).SetLabel("golden.counter")
			q := stmcol.NewQueue[int]().SetName("golden.queue")
			return func(w *harness.Worker) {
				_ = w.Thread.Atomic(func(tx *stm.Tx) error {
					w.Compute(64)
					counter.Set(tx, counter.Get(tx)+1)
					q.Enqueue(tx, counter.Get(tx))
					if q.Size(tx) > 4 {
						q.Dequeue(tx)
					}
					w.Compute(64)
					return nil
				})
			}
		},
	}
}

// goldenTrace captures a small deterministic run's Chrome trace. The
// recorder's WriteTrace renumbers transaction ids by first appearance,
// so the output is stable even though the process-wide txid counter
// depends on which tests ran before this one.
func goldenTrace(t *testing.T) []byte {
	t.Helper()
	rec := obs.NewRecorder(obs.DefaultRecorderCap)
	obs.SetTracer(rec)
	defer obs.SetTracer(nil)

	harness.RunFigureOpts("golden", []harness.Config{goldenConfig()}, []int{2}, 64, 7, harness.FigureOptions{})

	obs.SetTracer(nil)
	if rec.Dropped() != 0 {
		t.Fatalf("golden run overflowed the ring: %d dropped", rec.Dropped())
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGolden pins the exact Chrome trace_event output of a small
// deterministic TestMap run. Regenerate with `go test ./cmd/tccbench
// -run TestTraceGolden -update` after intentional format changes.
func TestTraceGolden(t *testing.T) {
	got := goldenTrace(t)
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace output diverged from %s (rerun with -update if intended)\ngot %d bytes, want %d bytes",
			golden, len(got), len(want))
	}
}

// TestTraceGoldenIsValidChromeJSON double-checks the golden bytes parse
// as the trace_event shape a viewer expects.
func TestTraceGoldenIsValidChromeJSON(t *testing.T) {
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(goldenTrace(t), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	spans := 0
	for i, e := range tf.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event %d has no phase: %v", i, e)
		}
		if ph == "X" {
			spans++
			if _, ok := e["dur"]; !ok {
				t.Fatalf("complete event %d has no dur: %v", i, e)
			}
		}
	}
	if spans == 0 {
		t.Fatal("trace has no transaction spans")
	}
}

func TestParseCPUs(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"1,2,4", []int{1, 2, 4}, true},
		{" 1 , 8 ", []int{1, 8}, true},
		{"1,,2", []int{1, 2}, true},
		{"", nil, false},
		{"0", nil, false},
		{"-2", nil, false},
		{"two", nil, false},
	}
	for _, c := range cases {
		got, err := parseCPUs(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseCPUs(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseCPUs(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
