package main

import (
	"reflect"
	"strings"
	"testing"
)

// TestBuildFigureSmoke runs each figure on a tiny configuration — the
// same in-process path `tccbench -fig N -ops 64 -cpus 1,2` takes — so a
// regression anywhere in the harness or workloads fails fast here
// rather than only in a full benchmark run.
func TestBuildFigureSmoke(t *testing.T) {
	cpus := []int{1, 2}
	for n := 1; n <= 4; n++ {
		fig := buildFigure(n, cpus, 64, 7)
		out := fig.String()
		if out == "" {
			t.Errorf("figure %d produced no output", n)
		}
		for _, cpu := range []string{"1", "2"} {
			if !strings.Contains(out, cpu) {
				t.Errorf("figure %d output missing CPU row %s:\n%s", n, cpu, out)
			}
		}
		if stats := fig.StatsString(); stats == "" {
			t.Errorf("figure %d produced no stats output", n)
		}
	}
}

// TestBuildFigureDeterministic: same seed, same figure — byte-identical
// output, the property the whole virtual-CPU simulator exists for.
func TestBuildFigureDeterministic(t *testing.T) {
	a := buildFigure(1, []int{1, 2}, 64, 7).String()
	b := buildFigure(1, []int{1, 2}, 64, 7).String()
	if a != b {
		t.Errorf("same seed produced different output:\n%s\n---\n%s", a, b)
	}
}

func TestParseCPUs(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"1,2,4", []int{1, 2, 4}, true},
		{" 1 , 8 ", []int{1, 8}, true},
		{"1,,2", []int{1, 2}, true},
		{"", nil, false},
		{"0", nil, false},
		{"-2", nil, false},
		{"two", nil, false},
	}
	for _, c := range cases {
		got, err := parseCPUs(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseCPUs(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseCPUs(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
