// Command tccbench regenerates the paper's evaluation figures on the
// deterministic virtual-CPU simulator:
//
//	Figure 1 — TestMap        (HashMap variants)
//	Figure 2 — TestSortedMap  (TreeMap variants, subMap range lookups)
//	Figure 3 — TestCompound   (two composed operations per transaction)
//	Figure 4 — SPECjbb2000    (single-warehouse, four configurations)
//
// Each figure prints one row per CPU count and one column per
// configuration; values are speedups normalized to the 1-CPU Java run,
// exactly as the paper plots them.
//
// Usage:
//
//	tccbench                  # all four figures
//	tccbench -fig 3           # one figure
//	tccbench -ops 8192        # more work per run
//	tccbench -cpus 1,2,4,8    # custom sweep
//	tccbench -stats           # append commit/abort/violation breakdowns
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tcc/internal/harness"
	"tcc/internal/jbb"
)

func main() {
	var (
		figFlag   = flag.Int("fig", 0, "figure to run (1-4); 0 runs all")
		opsFlag   = flag.Int("ops", 4096, "total operations per run (divided among CPUs)")
		cpusFlag  = flag.String("cpus", "1,2,4,8,16,32", "comma-separated CPU counts")
		seedFlag  = flag.Int64("seed", 7, "deterministic schedule seed")
		statsFlag = flag.Bool("stats", false, "print transaction statistics per run")
	)
	flag.Parse()

	cpus, err := parseCPUs(*cpusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tccbench:", err)
		os.Exit(2)
	}

	run := func(n int) {
		fig := buildFigure(n, cpus, *opsFlag, *seedFlag)
		fmt.Print(fig)
		if *statsFlag {
			fmt.Print(fig.StatsString())
		}
		fmt.Println()
	}
	if *figFlag != 0 {
		if *figFlag < 1 || *figFlag > 4 {
			fmt.Fprintln(os.Stderr, "tccbench: -fig must be 1..4")
			os.Exit(2)
		}
		run(*figFlag)
		return
	}
	for n := 1; n <= 4; n++ {
		run(n)
	}
}

func buildFigure(n int, cpus []int, ops int, seed int64) harness.Figure {
	p := harness.DefaultMapParams()
	p.TotalOps = ops
	switch n {
	case 1:
		return harness.RunFigure("TestMap (Figure 1)", harness.TestMapConfigs(p), cpus, ops, seed)
	case 2:
		return harness.RunFigure("TestSortedMap (Figure 2)", harness.TestSortedMapConfigs(p), cpus, ops, seed)
	case 3:
		return harness.RunFigure("TestCompound (Figure 3)", harness.TestCompoundConfigs(p), cpus, ops, seed)
	default:
		return jbb.RunFigure4(cpus, ops, jbb.DefaultParams(), seed)
	}
}

func parseCPUs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid CPU count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no CPU counts given")
	}
	return out, nil
}
