// Command tccbench regenerates the paper's evaluation figures on the
// deterministic virtual-CPU simulator:
//
//	Figure 1 — TestMap        (HashMap variants)
//	Figure 2 — TestSortedMap  (TreeMap variants, subMap range lookups)
//	Figure 3 — TestCompound   (two composed operations per transaction)
//	Figure 4 — SPECjbb2000    (single-warehouse, four configurations)
//	Figure 5 — TestStripedMap (disjoint-key workers on one shared map,
//	                           single-guard vs striped)
//	Figure 6 — TestMapRead90  (90%-read mix, retry-path vs MVCC-lite
//	                           snapshot reads)
//	Figure 7 — TestMapRead99  (99%-read mix, same pairing)
//
// Each figure prints one row per CPU count and one column per
// configuration; values are speedups normalized to the 1-CPU Java run,
// exactly as the paper plots them.
//
// Usage:
//
//	tccbench                  # all seven figures
//	tccbench -fig 3           # one figure
//	tccbench -ops 8192        # more work per run
//	tccbench -cpus 1,2,4,8    # custom sweep
//	tccbench -stats           # append commit/abort/violation breakdowns
//	tccbench -profile         # append TAPE-style conflict heatmaps
//	tccbench -stats-json F    # write speedups+stats+profiles as JSON to F
//	tccbench -trace F         # write a Chrome trace_event file to F
//
// A -trace file loads in Perfetto / chrome://tracing: one lane per
// virtual CPU, committed transactions as spans, conflicts and backoffs
// as annotated slices.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tcc/internal/harness"
	"tcc/internal/jbb"
	"tcc/internal/obs"
)

func main() {
	var (
		figFlag     = flag.Int("fig", 0, "figure to run (1-7); 0 runs all")
		opsFlag     = flag.Int("ops", 4096, "total operations per run (divided among CPUs)")
		cpusFlag    = flag.String("cpus", "1,2,4,8,16,32", "comma-separated CPU counts")
		seedFlag    = flag.Int64("seed", 7, "deterministic schedule seed")
		statsFlag   = flag.Bool("stats", false, "print transaction statistics per run")
		profileFlag = flag.Bool("profile", false, "print per-variable conflict heatmaps")
		jsonFlag    = flag.String("stats-json", "", "write machine-readable results to `file` ('-' for stdout)")
		traceFlag   = flag.String("trace", "", "write Chrome trace_event JSON to `file` ('-' for stdout)")
	)
	flag.Parse()

	cpus, err := parseCPUs(*cpusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tccbench:", err)
		os.Exit(2)
	}

	// Profiles ride inside the JSON export, so -stats-json implies the
	// profiling pass even without -profile on the terminal.
	opts := harness.FigureOptions{Profile: *profileFlag || *jsonFlag != ""}

	var rec *obs.Recorder
	if *traceFlag != "" {
		rec = obs.NewRecorder(obs.DefaultRecorderCap)
		obs.SetTracer(rec)
		defer obs.SetTracer(nil)
	}

	var figures []harness.Figure
	run := func(n int) {
		fig := buildFigure(n, cpus, *opsFlag, *seedFlag, opts)
		figures = append(figures, fig)
		fmt.Print(fig)
		if *statsFlag {
			fmt.Print(fig.StatsString())
		}
		if *profileFlag {
			fmt.Print(fig.ProfileString(5))
		}
		fmt.Println()
	}
	if *figFlag != 0 {
		if *figFlag < 1 || *figFlag > 7 {
			fmt.Fprintln(os.Stderr, "tccbench: -fig must be 1..7")
			os.Exit(2)
		}
		run(*figFlag)
	} else {
		for n := 1; n <= 7; n++ {
			run(n)
		}
	}

	if *jsonFlag != "" {
		rep := harness.BuildReport(noteFor(*figFlag, *opsFlag, *seedFlag), figures...)
		if err := writeTo(*jsonFlag, rep.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "tccbench:", err)
			os.Exit(1)
		}
	}
	if rec != nil {
		obs.SetTracer(nil)
		if n := rec.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "tccbench: trace ring overflowed, oldest %d events dropped\n", n)
		}
		if err := writeTo(*traceFlag, rec.WriteTrace); err != nil {
			fmt.Fprintln(os.Stderr, "tccbench:", err)
			os.Exit(1)
		}
	}
}

// writeTo streams write to path, with "-" meaning stdout.
func writeTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func noteFor(fig, ops int, seed int64) string {
	which := "figures 1-5"
	if fig != 0 {
		which = fmt.Sprintf("figure %d", fig)
	}
	return fmt.Sprintf("tccbench %s, ops=%d, seed=%d", which, ops, seed)
}

func buildFigure(n int, cpus []int, ops int, seed int64, opts harness.FigureOptions) harness.Figure {
	p := harness.DefaultMapParams()
	p.TotalOps = ops
	switch n {
	case 1:
		return harness.RunFigureOpts("TestMap (Figure 1)", harness.TestMapConfigs(p), cpus, ops, seed, opts)
	case 2:
		return harness.RunFigureOpts("TestSortedMap (Figure 2)", harness.TestSortedMapConfigs(p), cpus, ops, seed, opts)
	case 3:
		return harness.RunFigureOpts("TestCompound (Figure 3)", harness.TestCompoundConfigs(p), cpus, ops, seed, opts)
	case 4:
		return jbb.RunFigure4Opts(cpus, ops, jbb.DefaultParams(), seed, opts)
	case 6:
		p6 := harness.ReadRatioParams(90)
		p6.TotalOps = ops
		return harness.RunFigureOpts("TestMapRead90 (Figure 6)", harness.ReadRatioConfigs(p6), cpus, ops, seed, opts)
	case 7:
		p7 := harness.ReadRatioParams(99)
		p7.TotalOps = ops
		return harness.RunFigureOpts("TestMapRead99 (Figure 7)", harness.ReadRatioConfigs(p7), cpus, ops, seed, opts)
	default:
		return harness.RunFigureOpts("TestStripedMap (Figure 5)", harness.StripedMapConfigs(p), cpus, ops, seed, opts)
	}
}

func parseCPUs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid CPU count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no CPU counts given")
	}
	return out, nil
}
