// Command tccbench regenerates the paper's evaluation figures on the
// deterministic virtual-CPU simulator:
//
//	Figure 1 — TestMap        (HashMap variants)
//	Figure 2 — TestSortedMap  (TreeMap variants, subMap range lookups)
//	Figure 3 — TestCompound   (two composed operations per transaction)
//	Figure 4 — SPECjbb2000    (single-warehouse, four configurations)
//	Figure 5 — TestStripedMap (disjoint-key workers on one shared map,
//	                           single-guard vs striped)
//	Figure 6 — TestMapRead90  (90%-read mix, retry-path vs MVCC-lite
//	                           snapshot reads)
//	Figure 7 — TestMapRead99  (99%-read mix, same pairing)
//
// Each figure prints one row per CPU count and one column per
// configuration; values are speedups normalized to the 1-CPU Java run,
// exactly as the paper plots them.
//
// Usage:
//
//	tccbench                  # all seven figures
//	tccbench -fig 3           # one figure
//	tccbench -ops 8192        # more work per run
//	tccbench -cpus 1,2,4,8    # custom sweep
//	tccbench -stats           # append commit/abort/violation breakdowns
//	tccbench -profile         # append TAPE-style conflict heatmaps
//	tccbench -stats-json F    # write speedups+stats+profiles as JSON to F
//	tccbench -trace F         # write a Chrome trace_event file to F
//
// A -trace file loads in Perfetto / chrome://tracing: one lane per
// virtual CPU, committed transactions as spans, conflicts and backoffs
// as annotated slices.
//
// Long-running metrics mode:
//
//	tccbench -metrics-addr 127.0.0.1:0 -run-for 30s
//
// instead of the figure sweep, runs a sustained contended workload on
// real goroutines, serves live windowed metrics over HTTP (/metrics in
// Prometheus text format, /metrics.json as JSON), starts the
// background monitor thread, and prints the bound listen address on
// the first stdout line so scripts can scrape it. -run-for 0 runs
// until interrupted.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"tcc/internal/harness"
	"tcc/internal/jbb"
	"tcc/internal/obs"
	"tcc/internal/obs/metrics"
)

func main() {
	var (
		figFlag     = flag.Int("fig", 0, "figure to run (1-7); 0 runs all")
		opsFlag     = flag.Int("ops", 4096, "total operations per run (divided among CPUs)")
		cpusFlag    = flag.String("cpus", "1,2,4,8,16,32", "comma-separated CPU counts")
		seedFlag    = flag.Int64("seed", 7, "deterministic schedule seed")
		statsFlag   = flag.Bool("stats", false, "print transaction statistics per run")
		profileFlag = flag.Bool("profile", false, "print per-variable conflict heatmaps")
		jsonFlag    = flag.String("stats-json", "", "write machine-readable results to `file` ('-' for stdout)")
		traceFlag   = flag.String("trace", "", "write Chrome trace_event JSON to `file` ('-' for stdout)")
		metricsFlag = flag.String("metrics-addr", "", "serve live metrics at `addr` and run a sustained workload instead of the figure sweep")
		runForFlag  = flag.Duration("run-for", 0, "with -metrics-addr, stop the sustained workload after this duration (0 = until interrupted)")
		workersFlag = flag.Int("workers", 4, "with -metrics-addr, number of workload goroutines")
	)
	flag.Parse()

	if *metricsFlag != "" {
		os.Exit(runSustained(*metricsFlag, *runForFlag, *workersFlag, *seedFlag))
	}

	cpus, err := parseCPUs(*cpusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tccbench:", err)
		os.Exit(2)
	}

	// Profiles ride inside the JSON export, so -stats-json implies the
	// profiling pass even without -profile on the terminal.
	opts := harness.FigureOptions{Profile: *profileFlag || *jsonFlag != ""}

	var rec *obs.Recorder
	if *traceFlag != "" {
		rec = obs.NewRecorder(obs.DefaultRecorderCap)
		obs.SetTracer(rec)
		defer obs.SetTracer(nil)
	}

	var figures []harness.Figure
	run := func(n int) {
		fig := buildFigure(n, cpus, *opsFlag, *seedFlag, opts)
		figures = append(figures, fig)
		fmt.Print(fig)
		if *statsFlag {
			fmt.Print(fig.StatsString())
		}
		if *profileFlag {
			fmt.Print(fig.ProfileString(5))
		}
		fmt.Println()
	}
	if *figFlag != 0 {
		if *figFlag < 1 || *figFlag > 7 {
			fmt.Fprintln(os.Stderr, "tccbench: -fig must be 1..7")
			os.Exit(2)
		}
		run(*figFlag)
	} else {
		for n := 1; n <= 7; n++ {
			run(n)
		}
	}

	if *jsonFlag != "" {
		rep := harness.BuildReport(noteFor(*figFlag, *opsFlag, *seedFlag), figures...)
		if err := writeTo(*jsonFlag, rep.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "tccbench:", err)
			os.Exit(1)
		}
	}
	if rec != nil {
		obs.SetTracer(nil)
		if n := rec.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "tccbench: trace ring overflowed, oldest %d events dropped\n", n)
		}
		if err := writeTo(*traceFlag, rec.WriteTrace); err != nil {
			fmt.Fprintln(os.Stderr, "tccbench:", err)
			os.Exit(1)
		}
	}
}

// runSustained is the -metrics-addr mode: enable the metrics plane,
// serve /metrics and /metrics.json on addr, start the background
// monitor, and drive the sustained workload until the duration elapses
// or the process is interrupted. The first stdout line is the bound
// address (resolved from :0 if requested), so scripts can scrape it.
func runSustained(addr string, runFor time.Duration, workers int, seed int64) int {
	metrics.SetEnabled(true)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tccbench:", err)
		return 1
	}
	fmt.Printf("metrics: http://%s/metrics\n", ln.Addr())

	srv := &http.Server{Handler: metrics.NewMux(metrics.Default)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	mon := metrics.NewMonitor(metrics.Default, metrics.MonitorConfig{
		Logger: log.New(os.Stderr, "", log.LstdFlags),
	})
	mon.Start()

	stop := make(chan struct{})
	done := make(chan harness.SustainedResult, 1)
	go func() { done <- harness.RunSustained(workers, seed, stop) }()

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	var timeout <-chan time.Time
	if runFor > 0 {
		timeout = time.After(runFor)
	}
	select {
	case <-timeout:
	case <-interrupt:
		fmt.Fprintln(os.Stderr, "tccbench: interrupted, shutting down")
	}
	close(stop)
	res := <-done
	mon.Stop()
	srv.Close()
	<-serveErr

	st := res.Stats
	fmt.Printf("sustained: workers=%d ops=%d elapsed=%s commits=%d aborts=%d violations=%d snapshot=%d fallbacks=%d\n",
		res.Workers, res.Ops, res.Elapsed.Round(time.Millisecond),
		st.Commits, st.Aborts, st.Violations, st.SnapshotCommits, st.SnapshotFallbacks)
	return 0
}

// writeTo streams write to path, with "-" meaning stdout.
func writeTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func noteFor(fig, ops int, seed int64) string {
	which := "figures 1-5"
	if fig != 0 {
		which = fmt.Sprintf("figure %d", fig)
	}
	return fmt.Sprintf("tccbench %s, ops=%d, seed=%d", which, ops, seed)
}

func buildFigure(n int, cpus []int, ops int, seed int64, opts harness.FigureOptions) harness.Figure {
	p := harness.DefaultMapParams()
	p.TotalOps = ops
	switch n {
	case 1:
		return harness.RunFigureOpts("TestMap (Figure 1)", harness.TestMapConfigs(p), cpus, ops, seed, opts)
	case 2:
		return harness.RunFigureOpts("TestSortedMap (Figure 2)", harness.TestSortedMapConfigs(p), cpus, ops, seed, opts)
	case 3:
		return harness.RunFigureOpts("TestCompound (Figure 3)", harness.TestCompoundConfigs(p), cpus, ops, seed, opts)
	case 4:
		return jbb.RunFigure4Opts(cpus, ops, jbb.DefaultParams(), seed, opts)
	case 6:
		p6 := harness.ReadRatioParams(90)
		p6.TotalOps = ops
		return harness.RunFigureOpts("TestMapRead90 (Figure 6)", harness.ReadRatioConfigs(p6), cpus, ops, seed, opts)
	case 7:
		p7 := harness.ReadRatioParams(99)
		p7.TotalOps = ops
		return harness.RunFigureOpts("TestMapRead99 (Figure 7)", harness.ReadRatioConfigs(p7), cpus, ops, seed, opts)
	default:
		return harness.RunFigureOpts("TestStripedMap (Figure 5)", harness.StripedMapConfigs(p), cpus, ops, seed, opts)
	}
}

func parseCPUs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid CPU count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no CPU counts given")
	}
	return out, nil
}
