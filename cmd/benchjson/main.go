// Command benchjson converts `go test -bench` text output (read from
// stdin) into the machine-readable JSON that scripts/bench.sh writes to
// BENCH_stm.json. Committing that file each PR turns git history into a
// performance trajectory: any two revisions can be diffed metric by
// metric without re-running either.
//
// Usage:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson -note "context" > BENCH_stm.json
//
// The parser understands the standard benchmark line shape — name,
// iteration count, then (value, unit) pairs — which covers -benchmem
// columns and custom b.ReportMetric units alike. GOMAXPROCS name
// suffixes ("-8") are stripped so results compare across machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full BENCH_*.json document.
type Report struct {
	Note       string      `json:"note,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse consumes `go test -bench` output and returns the report.
// Non-benchmark lines (PASS, ok, test logs) are ignored.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one "BenchmarkX-8  N  v unit  v unit ..." line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Shortest valid line: name, iterations, value, unit.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       trimProcSuffix(strings.TrimPrefix(fields[0], "Benchmark")),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// trimProcSuffix drops the trailing "-<GOMAXPROCS>" from a benchmark
// name. Only the last dash-number segment is removed, so names like
// "X/size-128-8" keep their parameter.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	note := flag.String("note", "", "free-form context recorded in the report (e.g. baseline numbers)")
	flag.Parse()
	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Note = *note
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
