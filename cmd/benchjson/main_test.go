package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: tcc/internal/stm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSTMReadOnly4Var-8   	 1658776	       139.5 ns/op	      32 B/op	       1 allocs/op
BenchmarkSTMNestedRetry-8    	  121449	      1813 ns/op	     159 B/op	       6 allocs/op
PASS
ok  	tcc/internal/stm	1.351s
pkg: tcc
BenchmarkFigure1-8           	       1	123456789 ns/op	        11.79 atomos@32x	        21.02 java@32x	        26.01 tcc@32x
some unrelated log line
PASS
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("env header parsed wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	ro := rep.Benchmarks[0]
	if ro.Pkg != "tcc/internal/stm" || ro.Name != "STMReadOnly4Var" || ro.Iterations != 1658776 {
		t.Fatalf("first benchmark parsed wrong: %+v", ro)
	}
	if ro.Metrics["ns/op"] != 139.5 || ro.Metrics["allocs/op"] != 1 {
		t.Fatalf("metrics parsed wrong: %+v", ro.Metrics)
	}
	fig := rep.Benchmarks[2]
	if fig.Pkg != "tcc" || fig.Name != "Figure1" {
		t.Fatalf("figure benchmark parsed wrong: %+v", fig)
	}
	if fig.Metrics["java@32x"] != 21.02 || fig.Metrics["tcc@32x"] != 26.01 {
		t.Fatalf("custom metrics parsed wrong: %+v", fig.Metrics)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"STMReadOnly4Var-8":    "STMReadOnly4Var",
		"STMReadOnly4Var":      "STMReadOnly4Var",
		"RealSTM/ReadOnlyTx-8": "RealSTM/ReadOnlyTx",
		"X/size-128":           "X/size", // trailing dash-number is always treated as GOMAXPROCS
		"X/size-128-8":         "X/size-128",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
