// Package main is a module that holds the transactional discipline:
// stmlint must exit 0 on it.
package main

import "cleanmod/stm"

var guard = stm.NewGuard()
var counter int

func bump() {
	guard.Lock()
	counter++
	guard.Unlock()
}

func main() {
	bump()
}
