// Package stm is a minimal stand-in for the real STM package (see
// cleanmod/stm); the rules match it by import-path suffix.
package stm

// Guard is a commit guard stub.
type Guard struct{ id uint64 }

// NewGuard allocates a guard.
func NewGuard() *Guard { return &Guard{} }

// ID returns the guard's ordering identity.
func (g *Guard) ID() uint64 { return g.id }

// Lock acquires the guard.
func (g *Guard) Lock() {}

// Unlock releases the guard.
func (g *Guard) Unlock() {}
