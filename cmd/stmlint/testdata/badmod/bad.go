// Package main violates the commit-window discipline once openly (the
// diagnostic stmlint must report, exiting 1) and once suppressed (the
// count the -json report must carry).
package main

import (
	"time"

	"badmod/stm"
)

var guard = stm.NewGuard()

func sleepy() {
	guard.Lock()
	time.Sleep(time.Millisecond)
	guard.Unlock()
}

func excused() {
	guard.Lock()
	//stmlint:ignore commit-window-blocking exercising the suppressed count
	time.Sleep(time.Millisecond)
	guard.Unlock()
}

func main() {
	sleepy()
	excused()
}
