package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"tcc/internal/analysis"
)

// cli runs stmlint in-process with cwd anchored at testdata/<mod> and
// returns the exit code and captured streams.
func cli(t *testing.T, mod string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", mod))
	if err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	code = realMain(args, dir, &out, &errw)
	return code, out.String(), errw.String()
}

func TestCleanModuleExitsZero(t *testing.T) {
	code, stdout, stderr := cli(t, "cleanmod", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout=%q stderr=%q)", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("stdout = %q, want empty", stdout)
	}
}

func TestDiagnosticsExitOne(t *testing.T) {
	code, stdout, _ := cli(t, "badmod", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout=%q)", code, stdout)
	}
	if !strings.Contains(stdout, "commit-window-blocking") {
		t.Errorf("stdout missing rule id: %q", stdout)
	}
	if !strings.Contains(stdout, "bad.go:16:") {
		t.Errorf("stdout missing file:line position: %q", stdout)
	}
	if strings.Contains(stdout, "bad.go:23:") {
		t.Errorf("suppressed finding leaked into output: %q", stdout)
	}
}

func TestJSONReport(t *testing.T) {
	code, stdout, _ := cli(t, "badmod", "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout=%q)", code, stdout)
	}
	var report struct {
		Diagnostics []struct {
			Rule    string `json:"rule"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
		} `json:"diagnostics"`
		Suppressed int `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if len(report.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %d, want 1: %+v", len(report.Diagnostics), report)
	}
	d := report.Diagnostics[0]
	if d.Rule != "commit-window-blocking" || d.File != "bad.go" || d.Line != 16 || d.Col == 0 || d.Message == "" {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if report.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", report.Suppressed)
	}
}

func TestJSONCleanIsEmptyReport(t *testing.T) {
	code, stdout, _ := cli(t, "cleanmod", "-json", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout=%q)", code, stdout)
	}
	var report struct {
		Diagnostics []json.RawMessage `json:"diagnostics"`
		Suppressed  int               `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if report.Diagnostics == nil || len(report.Diagnostics) != 0 || report.Suppressed != 0 {
		t.Errorf("want empty (non-null) diagnostics and 0 suppressed, got %s", stdout)
	}
}

func TestPlainDirPattern(t *testing.T) {
	// A plain directory pattern names exactly one package: the stm stub
	// package is clean even though the module root is not.
	code, stdout, stderr := cli(t, "badmod", "./stm")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout=%q stderr=%q)", code, stdout, stderr)
	}
	code, stdout, _ = cli(t, "badmod", ".")
	if code != 1 || !strings.Contains(stdout, "bad.go:16:") {
		t.Fatalf("exit = %d, stdout = %q; want the root package's finding", code, stdout)
	}
}

func TestOutsideModulePatternFails(t *testing.T) {
	code, _, stderr := cli(t, "badmod", "../../../../internal/stm")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr=%q)", code, stderr)
	}
	if !strings.Contains(stderr, "outside the module") {
		t.Errorf("stderr = %q, want outside-module error", stderr)
	}
}

func TestRulesListing(t *testing.T) {
	code, stdout, _ := cli(t, "cleanmod", "-rules")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, r := range analysis.Rules() {
		if !strings.Contains(stdout, r.ID) || !strings.Contains(stdout, r.Doc) {
			t.Errorf("-rules output missing %s", r.ID)
		}
	}
}

func TestTimingGoesToStderr(t *testing.T) {
	code, stdout, stderr := cli(t, "cleanmod", "-json", "-timing", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !json.Valid([]byte(stdout)) {
		t.Errorf("-timing corrupted the JSON stream: %q", stdout)
	}
	for _, r := range analysis.Rules() {
		if !strings.Contains(stderr, r.ID) {
			t.Errorf("timing output missing rule %s:\n%s", r.ID, stderr)
		}
	}
}
