// Command stmlint checks the repository's transactional discipline: the
// usage rules that Atomos enforced in its compiler and that this Go
// reproduction can only enforce by static analysis (see
// internal/analysis for the rule set and README.md "Static analysis"
// for the rationale behind each rule).
//
// Usage:
//
//	stmlint [-rules] [packages]
//
//	stmlint ./...             # whole module
//	stmlint ./internal/core   # one package directory
//	stmlint -rules            # list rule IDs
//
// Diagnostics print as file:line:col: rule-id: message. Exit status is
// 0 when clean, 1 when any diagnostic is reported, 2 on load or usage
// errors. Individual findings can be suppressed with a comment on, or
// immediately above, the offending line:
//
//	//stmlint:ignore rule-id reason
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tcc/internal/analysis"
)

func main() {
	rulesFlag := flag.Bool("rules", false, "list rule IDs and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: stmlint [-rules] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rulesFlag {
		for _, r := range analysis.Rules() {
			fmt.Printf("%-18s %s\n", r.ID, r.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// run lints the packages matched by patterns and returns the number of
// diagnostics printed.
func run(patterns []string) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return 0, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return 0, err
	}
	paths, err := expand(loader, cwd, patterns)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, path := range paths {
		rel, ok := strings.CutPrefix(path, loader.ModulePath)
		if !ok {
			return total, fmt.Errorf("package %s is outside module %s", path, loader.ModulePath)
		}
		dir := filepath.Join(loader.ModuleDir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			return total, err
		}
		if len(pkg.TypeErrors) > 0 {
			return total, fmt.Errorf("type errors in %s: %v", path, pkg.TypeErrors[0])
		}
		for _, d := range analysis.Check(loader.Fset, pkg) {
			d.Pos.Filename = relPath(cwd, d.Pos.Filename)
			fmt.Println(d)
			total++
		}
	}
	return total, nil
}

// expand resolves command-line patterns ("./...", "dir/...", plain
// directories) to module import paths.
func expand(loader *analysis.Loader, cwd string, patterns []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			pat = strings.TrimSuffix(rest, "/")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		rel, err := filepath.Rel(loader.ModuleDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside the module", pat)
		}
		importPath := loader.ModulePath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		if !recursive {
			add(importPath)
			continue
		}
		all, err := loader.ModulePackages()
		if err != nil {
			return nil, err
		}
		for _, p := range all {
			if p == importPath || strings.HasPrefix(p, importPath+"/") {
				add(p)
			}
		}
	}
	return out, nil
}

// relPath renders a diagnostic path relative to the working directory
// when that is shorter, matching go vet's output style.
func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
