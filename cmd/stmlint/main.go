// Command stmlint checks the repository's transactional discipline: the
// usage rules that Atomos enforced in its compiler and that this Go
// reproduction can only enforce by static analysis (see
// internal/analysis for the rule set and README.md "Static analysis"
// for the rationale behind each rule).
//
// Usage:
//
//	stmlint [-rules] [-json] [-timing] [packages]
//
//	stmlint ./...             # whole module
//	stmlint ./internal/core   # one package directory
//	stmlint -json ./...       # machine-readable report
//	stmlint -rules            # list rule IDs
//
// Diagnostics print as file:line:col: rule-id: message; -json instead
// emits one report object {"diagnostics": [...], "suppressed": n} on
// stdout. -timing prints per-rule wall time to stderr. Exit status is
// 0 when clean, 1 when any diagnostic is reported, 2 on load or usage
// errors. Individual findings can be suppressed with a comment on, or
// immediately above, the offending line:
//
//	//stmlint:ignore rule-id reason
//
// Packages are loaded once (parsing in parallel, type-checking
// serially — the source importer is single-threaded), then checked
// concurrently against one module-wide call graph; output order is
// deterministic regardless of worker scheduling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"tcc/internal/analysis"
)

func main() {
	os.Exit(realMain(os.Args[1:], mustGetwd(), os.Stdout, os.Stderr))
}

func mustGetwd() string {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmlint:", err)
		os.Exit(2)
	}
	return cwd
}

// jsonDiagnostic is one finding in the -json report.
type jsonDiagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// jsonReport is the -json output: every surviving diagnostic plus how
// many were suppressed by //stmlint:ignore directives.
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Suppressed  int              `json:"suppressed"`
}

// realMain is main with its environment made explicit, so the CLI tests
// run it in-process: args are the command-line arguments (without the
// program name), cwd anchors relative patterns and output paths, and
// the exit code is returned instead of passed to os.Exit.
func realMain(args []string, cwd string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.Bool("rules", false, "list rule IDs and exit")
	jsonFlag := fs.Bool("json", false, "report diagnostics as JSON on stdout")
	timingFlag := fs.Bool("timing", false, "print per-rule wall time to stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: stmlint [-rules] [-json] [-timing] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *rulesFlag {
		for _, r := range analysis.Rules() {
			fmt.Fprintf(stdout, "%-24s %s\n", r.ID, r.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	report, ruleTime, err := run(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "stmlint:", err)
		return 2
	}
	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "stmlint:", err)
			return 2
		}
	} else {
		for _, d := range report.Diagnostics {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Rule, d.Message)
		}
	}
	if *timingFlag {
		ids := make([]string, 0, len(ruleTime))
		for id := range ruleTime {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(stderr, "%-24s %8.1fms\n", id, float64(ruleTime[id].Microseconds())/1000)
		}
	}
	if len(report.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// run lints the packages matched by patterns: load them all (plus their
// module-internal dependencies), build one call graph spanning every
// loaded package, then check the requested ones concurrently against
// it. Diagnostics come back sorted by package, then position.
func run(cwd string, patterns []string) (*jsonReport, map[string]time.Duration, error) {
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return nil, nil, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return nil, nil, err
	}
	paths, err := expand(loader, cwd, patterns)
	if err != nil {
		return nil, nil, err
	}

	dirs := make([]string, 0, len(paths))
	pkgDir := make(map[string]string, len(paths))
	for _, path := range paths {
		rel, ok := strings.CutPrefix(path, loader.ModulePath)
		if !ok {
			return nil, nil, fmt.Errorf("package %s is outside module %s", path, loader.ModulePath)
		}
		dir := filepath.Join(loader.ModuleDir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		dirs = append(dirs, dir)
		pkgDir[path] = dir
	}
	loader.Preparse(dirs)

	pkgs := make([]*analysis.Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := loader.LoadDir(pkgDir[path], path)
		if err != nil {
			return nil, nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, nil, fmt.Errorf("type errors in %s: %v", path, pkg.TypeErrors[0])
		}
		pkgs = append(pkgs, pkg)
	}

	// The graph spans every package the loader pulled in — requested or
	// imported — so reachability does not stop at the boundary of the
	// requested set.
	graph := analysis.BuildCallGraph(loader.Fset, loader.Packages())

	// Check in parallel; results land in a per-package slot so output
	// order is the (sorted) expansion order, not completion order.
	results := make([]analysis.Result, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *analysis.Package) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = analysis.CheckWithGraph(loader.Fset, pkg, graph)
		}(i, pkg)
	}
	wg.Wait()

	report := &jsonReport{Diagnostics: []jsonDiagnostic{}}
	ruleTime := make(map[string]time.Duration)
	for _, res := range results {
		report.Suppressed += res.Suppressed
		for id, d := range res.RuleTime {
			ruleTime[id] += d
		}
		for _, d := range res.Diagnostics {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				Rule:    d.Rule,
				File:    relPath(cwd, d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Message: d.Message,
			})
		}
	}
	return report, ruleTime, nil
}

// expand resolves command-line patterns ("./...", "dir/...", plain
// directories) to module import paths.
func expand(loader *analysis.Loader, cwd string, patterns []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			pat = strings.TrimSuffix(rest, "/")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		rel, err := filepath.Rel(loader.ModuleDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside the module", pat)
		}
		importPath := loader.ModulePath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		if !recursive {
			add(importPath)
			continue
		}
		all, err := loader.ModulePackages()
		if err != nil {
			return nil, err
		}
		for _, p := range all {
			if p == importPath || strings.HasPrefix(p, importPath+"/") {
				add(p)
			}
		}
	}
	return out, nil
}

// relPath renders a diagnostic path relative to the working directory
// when that is shorter, matching go vet's output style.
func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
