package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"tcc/internal/stm"
)

// smokeConfig mirrors the -smoke flag's configuration.
func smokeConfig() sweepConfig {
	return sweepConfig{
		protocols:   stm.Protocols(),
		collections: []string{"striped", "sortedmap", "queue", "lanequeue"},
		updates:     []int{10, 50},
		goroutines:  []int{2, 4},
		ops:         64,
		keys:        64,
		seed:        7,
	}
}

// TestSweepCoversCrossProduct runs the smoke sweep in-process and
// checks every cell of the cross product is measured, does the
// configured work, and commits it.
func TestSweepCoversCrossProduct(t *testing.T) {
	cfg := smokeConfig()
	results := runSweep(cfg)
	want := len(cfg.protocols) * len(cfg.collections) * len(cfg.updates) * len(cfg.goroutines)
	if len(results) != want {
		t.Fatalf("sweep produced %d cells, want %d", len(results), want)
	}
	seen := make(map[string]bool)
	for _, r := range results {
		seen[r.name()] = true
		if r.totalOps != r.goroutines*cfg.ops {
			t.Errorf("%s: totalOps = %d, want %d", r.name(), r.totalOps, r.goroutines*cfg.ops)
		}
		if r.stats.Commits < uint64(r.totalOps) {
			t.Errorf("%s: %d commits for %d ops", r.name(), r.stats.Commits, r.totalOps)
		}
		if r.stats.Protocol != r.protocol {
			t.Errorf("%s: aggregate Stats.Protocol = %q, want %q", r.name(), r.stats.Protocol, r.protocol)
		}
		if r.elapsedNs <= 0 {
			t.Errorf("%s: non-positive elapsed %f", r.name(), r.elapsedNs)
		}
	}
	for _, proto := range cfg.protocols {
		for _, coll := range cfg.collections {
			for _, upd := range cfg.updates {
				for _, g := range cfg.goroutines {
					name := fmt.Sprintf("Sweep/%s/u%d/g%d/%s", coll, upd, g, proto)
					if !seen[name] {
						t.Errorf("missing cell %s", name)
					}
				}
			}
		}
	}
}

// TestSweepSortedCollection covers the collection the smoke config
// skips: the red-black TreeMap under a write-heavy mix, where
// rotations force real conflicts through every protocol's commit.
func TestSweepSortedCollection(t *testing.T) {
	cfg := smokeConfig()
	cfg.collections = []string{"sorted"}
	for _, r := range runSweep(cfg) {
		if r.stats.Commits < uint64(r.totalOps) {
			t.Errorf("%s: %d commits for %d ops", r.name(), r.stats.Commits, r.totalOps)
		}
	}
}

// TestBenchLinesParse checks the stdout face follows the `go test
// -bench` line shape cmd/benchjson parses: name, iterations, then
// (value, unit) pairs — an even field count with the three metrics.
func TestBenchLinesParse(t *testing.T) {
	results := []cellResult{{
		collection: "striped", update: 10, goroutines: 2, protocol: "tl2",
		totalOps: 128, elapsedNs: 128000,
	}}
	var buf bytes.Buffer
	writeBenchLines(&buf, results)
	out := buf.String()
	for _, want := range []string{"goos: ", "pkg: tcc/cmd/stmsweep", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench output missing %q:\n%s", want, out)
		}
	}
	var benchLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Benchmark") {
			benchLine = line
		}
	}
	if benchLine == "" {
		t.Fatalf("no benchmark line in:\n%s", out)
	}
	fields := strings.Fields(benchLine)
	if len(fields) < 4 || len(fields)%2 != 0 {
		t.Fatalf("benchmark line has %d fields, want even >= 4: %q", len(fields), benchLine)
	}
	if fields[0] != "BenchmarkSweep/striped/u10/g2/tl2" {
		t.Errorf("benchmark name = %q", fields[0])
	}
	for _, unit := range []string{"ns/op", "ops/sec", "aborts/op"} {
		if !strings.Contains(benchLine, unit) {
			t.Errorf("benchmark line missing %s: %q", unit, benchLine)
		}
	}
}

// TestSummaryTable checks the human summary names every swept protocol
// and collection.
func TestSummaryTable(t *testing.T) {
	cfg := smokeConfig()
	cfg.goroutines = []int{2}
	cfg.ops = 8
	results := runSweep(cfg)
	var buf bytes.Buffer
	writeSummary(&buf, results)
	out := buf.String()
	for _, want := range append(cfg.protocols, cfg.collections...) {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "4 collections × 2 mixes × 1 thread counts × 3 protocols") {
		t.Errorf("summary missing cell-space line:\n%s", out)
	}
}

// TestValidateRejectsUnknowns pins the driver's input validation.
func TestValidateRejectsUnknowns(t *testing.T) {
	cfg := smokeConfig()
	cfg.protocols = []string{"no-such-protocol"}
	if err := validate(cfg); err == nil {
		t.Error("unknown protocol accepted")
	}
	cfg = smokeConfig()
	cfg.collections = []string{"skiplist"}
	if err := validate(cfg); err == nil {
		t.Error("unknown collection accepted")
	}
	cfg = smokeConfig()
	cfg.updates = []int{120}
	if err := validate(cfg); err == nil {
		t.Error("out-of-range update ratio accepted")
	}
	if err := validate(smokeConfig()); err != nil {
		t.Errorf("smoke config rejected: %v", err)
	}
}
