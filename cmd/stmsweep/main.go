// Command stmsweep is a Synchrobench-style sweep driver for the STM's
// pluggable concurrency-control protocols: it runs a key-value /
// queue workload over the cross product
//
//	protocol × collection × update ratio × goroutine count
//
// on real goroutines and reports throughput and lost work per cell.
//
// Output has two faces:
//
//   - stdout: standard `go test -bench` result lines
//     ("BenchmarkSweep/<collection>/u<update%>/g<goroutines>/<protocol>"
//     with ns/op, ops/sec, aborts/op, and commits), so the output pipes
//     straight into cmd/benchjson and merges into BENCH_stm.json — the
//     same machine-readable convention every tracked bench uses.
//   - stderr: an aligned text summary grouped by collection and mix,
//     protocols side by side, for humans.
//
// Usage:
//
//	stmsweep                              # full default sweep
//	stmsweep -smoke                       # tiny deterministic config (CI gate)
//	stmsweep -protocols tl2,norec         # subset of stm.Protocols()
//	stmsweep -collections striped,sorted  # striped | sorted | sortedmap | queue | lanequeue
//	stmsweep -updates 10,50 -goroutines 2,4,8 -ops 20000 -keys 1024
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"tcc/internal/collections"
	"tcc/internal/core"
	"tcc/internal/harness"
	"tcc/internal/stm"
	"tcc/internal/stmcol"
)

// sweepConfig is the full cross product a run covers.
type sweepConfig struct {
	protocols   []string
	collections []string
	updates     []int // update percentage, 0-100
	goroutines  []int
	ops         int // operations per goroutine per cell
	keys        int // key range; keys/2 pre-populated
	seed        int64
}

// cellResult is one measured cell of the sweep.
type cellResult struct {
	collection string
	update     int
	goroutines int
	protocol   string
	totalOps   int
	elapsedNs  float64
	stats      stm.Stats
}

func (r cellResult) name() string {
	return fmt.Sprintf("Sweep/%s/u%d/g%d/%s", r.collection, r.update, r.goroutines, r.protocol)
}

func (r cellResult) nsPerOp() float64 { return r.elapsedNs / float64(r.totalOps) }

func (r cellResult) opsPerSec() float64 { return float64(r.totalOps) / (r.elapsedNs / 1e9) }

func (r cellResult) abortsPerOp() float64 { return float64(r.stats.Aborts) / float64(r.totalOps) }

func main() {
	var (
		protocolsFlag   = flag.String("protocols", strings.Join(stm.Protocols(), ","), "comma-separated protocols to sweep")
		collectionsFlag = flag.String("collections", "striped,sorted,sortedmap,queue,lanequeue", "comma-separated collections (striped, sorted, sortedmap, queue, lanequeue)")
		updatesFlag     = flag.String("updates", "10,50", "comma-separated update percentages")
		goroutinesFlag  = flag.String("goroutines", "2,4,8", "comma-separated goroutine counts")
		opsFlag         = flag.Int("ops", 20000, "operations per goroutine per cell")
		keysFlag        = flag.Int("keys", 1024, "key range (half pre-populated)")
		seedFlag        = flag.Int64("seed", 7, "deterministic workload seed")
		smokeFlag       = flag.Bool("smoke", false, "tiny deterministic configuration for CI gates")
	)
	flag.Parse()

	cfg := sweepConfig{
		protocols:   splitList(*protocolsFlag),
		collections: splitList(*collectionsFlag),
		updates:     splitInts(*updatesFlag),
		goroutines:  splitInts(*goroutinesFlag),
		ops:         *opsFlag,
		keys:        *keysFlag,
		seed:        *seedFlag,
	}
	if *smokeFlag {
		// The CI smoke cell: every protocol, the striped collection
		// shapes (map, range-striped sorted map, plain and segmented
		// queue), two mixes, two thread counts, 64 ops per goroutine —
		// small enough for a gate, wide enough to exercise every seam
		// method and both cross-stripe paths.
		cfg.collections = []string{"striped", "sortedmap", "queue", "lanequeue"}
		cfg.updates = []int{10, 50}
		cfg.goroutines = []int{2, 4}
		cfg.ops = 64
		cfg.keys = 64
	}
	if err := validate(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "stmsweep:", err)
		os.Exit(2)
	}

	results := runSweep(cfg)
	writeBenchLines(os.Stdout, results)
	writeSummary(os.Stderr, results)
}

func validate(cfg sweepConfig) error {
	known := make(map[string]bool)
	for _, p := range stm.Protocols() {
		known[p] = true
	}
	for _, p := range cfg.protocols {
		if !known[p] {
			return fmt.Errorf("unknown protocol %q (have %s)", p, strings.Join(stm.Protocols(), ", "))
		}
	}
	for _, c := range cfg.collections {
		switch c {
		case "striped", "sorted", "sortedmap", "queue", "lanequeue":
		default:
			return fmt.Errorf("unknown collection %q (have striped, sorted, sortedmap, queue, lanequeue)", c)
		}
	}
	if len(cfg.protocols) == 0 || len(cfg.collections) == 0 || len(cfg.updates) == 0 || len(cfg.goroutines) == 0 {
		return fmt.Errorf("empty sweep dimension")
	}
	for _, u := range cfg.updates {
		if u < 0 || u > 100 {
			return fmt.Errorf("update percentage %d out of range", u)
		}
	}
	return nil
}

// runSweep measures every cell of the cross product. Iteration order
// keeps one collection+mix together across protocols so the summary
// groups naturally and cache state is comparable within a group.
func runSweep(cfg sweepConfig) []cellResult {
	var results []cellResult
	for _, coll := range cfg.collections {
		for _, upd := range cfg.updates {
			for _, g := range cfg.goroutines {
				for _, proto := range cfg.protocols {
					results = append(results, runCell(cfg, coll, upd, g, proto))
				}
			}
		}
	}
	return results
}

// runCell measures one (collection, update%, goroutines, protocol)
// cell on the real-goroutine platform.
func runCell(cfg sweepConfig, coll string, upd, goroutines int, proto string) cellResult {
	workload := newWorkload(coll, cfg)
	plat := &harness.RealPlatform{Seed: cfg.seed, Protocol: proto}
	res := plat.Run(goroutines, func(w *harness.Worker) {
		for i := 0; i < cfg.ops; i++ {
			if err := workload.op(w, upd); err != nil {
				// The workload bodies never abort; an error here is a
				// driver bug, not a measurement.
				panic(err)
			}
		}
	})
	return cellResult{
		collection: coll,
		update:     upd,
		goroutines: goroutines,
		protocol:   proto,
		totalOps:   goroutines * cfg.ops,
		elapsedNs:  res.Elapsed,
		stats:      res.Stats,
	}
}

// workload is one collection under test: op runs a single transaction
// that reads or updates it according to the update percentage and
// returns the transaction's outcome.
type workload struct {
	op func(w *harness.Worker, updatePct int) error
}

// newWorkload builds and pre-populates the named collection.
//
//   - striped: SegmentedHashMap (per-stripe size fields and guards —
//     the disjoint-key-friendly map), Get vs Put/Remove.
//   - sorted: TreeMap (red-black tree; rotations near the root are the
//     paper's conflict hot spot), Get vs Put/Remove.
//   - sortedmap: range-striped TransactionalSortedMap (8 interval
//     stripes over the key space, per-stripe guards and range tables),
//     Get vs Put/Remove with an occasional cross-stripe CeilingKey so
//     the stripe-walk path rides the sweep too.
//   - queue: Queue; the "read" op is Peek+Size, the update alternates
//     Enqueue/Dequeue so the queue stays near its initial length.
//   - lanequeue: segmented TransactionalQueue (4 lanes, per-lane guards
//     and empty locks); the "read" op is Peek, the update alternates
//     Put/Poll on the worker's home lane.
func newWorkload(coll string, cfg sweepConfig) *workload {
	pick := func(w *harness.Worker) int { return w.RNG.Intn(cfg.keys) }
	isUpdate := func(w *harness.Worker, pct int) bool { return w.RNG.Intn(100) < pct }
	switch coll {
	case "striped":
		m := stmcol.NewSegmentedHashMap[int, int](8)
		seedMap(cfg, func(tx *stm.Tx, k int) { m.Put(tx, k, k) })
		return &workload{op: func(w *harness.Worker, pct int) error {
			k := pick(w)
			return w.Thread.Atomic(func(tx *stm.Tx) error {
				if !isUpdate(w, pct) {
					m.Get(tx, k)
				} else if k%2 == 0 {
					m.Put(tx, k, k)
				} else {
					m.Remove(tx, k)
				}
				return nil
			})
		}}
	case "sorted":
		m := stmcol.NewTreeMap[int, int]().SetName("sweep-sorted")
		seedMap(cfg, func(tx *stm.Tx, k int) { m.Put(tx, k, k) })
		return &workload{op: func(w *harness.Worker, pct int) error {
			k := pick(w)
			return w.Thread.Atomic(func(tx *stm.Tx) error {
				if !isUpdate(w, pct) {
					m.Get(tx, k)
				} else if k%2 == 0 {
					m.Put(tx, k, k)
				} else {
					m.Remove(tx, k)
				}
				return nil
			})
		}}
	case "sortedmap":
		const stripes = 8
		var bounds []int
		for i := 1; i < stripes; i++ {
			bounds = append(bounds, i*cfg.keys/stripes)
		}
		m := core.NewRangeStripedTransactionalSortedMap[int, int](func() collections.SortedMap[int, int] {
			return collections.NewTreeMap[int, int]()
		}, bounds)
		m.SetName("sweep-sortedmap")
		seedMap(cfg, func(tx *stm.Tx, k int) { m.Put(tx, k, k) })
		return &workload{op: func(w *harness.Worker, pct int) error {
			k := pick(w)
			nav := w.RNG.Intn(16) == 0
			return w.Thread.Atomic(func(tx *stm.Tx) error {
				switch {
				case nav:
					m.CeilingKey(tx, k)
				case !isUpdate(w, pct):
					m.Get(tx, k)
				case k%2 == 0:
					m.Put(tx, k, k)
				default:
					m.Remove(tx, k)
				}
				return nil
			})
		}}
	case "lanequeue":
		q := core.NewSegmentedTransactionalQueue[int](func() collections.Queue[int] {
			return collections.NewLinkedQueue[int]()
		}, 4)
		q.SetName("sweep-lanequeue")
		seedMap(cfg, func(tx *stm.Tx, k int) { q.Put(tx, k) })
		return &workload{op: func(w *harness.Worker, pct int) error {
			enq := pick(w)%2 == 0
			return w.Thread.Atomic(func(tx *stm.Tx) error {
				if !isUpdate(w, pct) {
					q.Peek(tx)
				} else if enq {
					q.Put(tx, 1)
				} else {
					q.Poll(tx)
				}
				return nil
			})
		}}
	case "queue":
		q := stmcol.NewQueue[int]().SetName("sweep-queue")
		seedMap(cfg, func(tx *stm.Tx, k int) { q.Enqueue(tx, k) })
		return &workload{op: func(w *harness.Worker, pct int) error {
			enq := pick(w)%2 == 0
			return w.Thread.Atomic(func(tx *stm.Tx) error {
				if !isUpdate(w, pct) {
					q.Peek(tx)
					q.Size(tx)
				} else if enq {
					q.Enqueue(tx, enq2int(enq))
				} else {
					q.Dequeue(tx)
				}
				return nil
			})
		}}
	}
	panic("unknown collection " + coll)
}

func enq2int(b bool) int {
	if b {
		return 1
	}
	return 0
}

// seedMap pre-populates a collection with keys/2 entries on a setup
// thread, so read ops hit and the maps start above their resize
// thresholds.
func seedMap(cfg sweepConfig, put func(tx *stm.Tx, k int)) {
	th := stm.NewThread(&stm.RealClock{}, cfg.seed)
	rng := rand.New(rand.NewSource(cfg.seed))
	for i := 0; i < cfg.keys/2; i++ {
		k := rng.Intn(cfg.keys)
		if err := th.Atomic(func(tx *stm.Tx) error {
			put(tx, k)
			return nil
		}); err != nil {
			panic(err)
		}
	}
}

// writeBenchLines emits the results in `go test -bench` text format,
// parseable by cmd/benchjson into the BENCH_stm.json convention.
func writeBenchLines(out io.Writer, results []cellResult) {
	fmt.Fprintf(out, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(out, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(out, "pkg: tcc/cmd/stmsweep\n")
	for _, r := range results {
		fmt.Fprintf(out, "Benchmark%s \t%8d\t%12.1f ns/op\t%14.0f ops/sec\t%8.4f aborts/op\n",
			r.name(), r.totalOps, r.nsPerOp(), r.opsPerSec(), r.abortsPerOp())
	}
	fmt.Fprintln(out, "PASS")
}

// writeSummary renders the human-facing table: one row per
// (collection, update%, goroutines, protocol) cell in sweep order,
// with throughput and the lost-work columns that separate the
// protocols' contention behavior.
func writeSummary(out io.Writer, results []cellResult) {
	fmt.Fprintf(out, "\nstmsweep: %d cells (%s)\n\n", len(results), cellSpace(results))
	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "collection\tupdate%\tgoroutines\tprotocol\tops/sec\tns/op\taborts/op\tcommits\taborts")
	prev := ""
	for _, r := range results {
		group := fmt.Sprintf("%s/u%d", r.collection, r.update)
		if prev != "" && group != prev {
			fmt.Fprintln(tw, "\t\t\t\t\t\t\t\t")
		}
		prev = group
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%.0f\t%.1f\t%.4f\t%d\t%d\n",
			r.collection, r.update, r.goroutines, r.protocol,
			r.opsPerSec(), r.nsPerOp(), r.abortsPerOp(), r.stats.Commits, r.stats.Aborts)
	}
	tw.Flush()
}

// cellSpace summarizes the swept dimensions ("2 collections × 2 mixes
// × 2 thread counts × 3 protocols").
func cellSpace(results []cellResult) string {
	colls := map[string]bool{}
	mixes := map[int]bool{}
	gs := map[int]bool{}
	protos := map[string]bool{}
	for _, r := range results {
		colls[r.collection] = true
		mixes[r.update] = true
		gs[r.goroutines] = true
		protos[r.protocol] = true
	}
	return fmt.Sprintf("%d collections × %d mixes × %d thread counts × %d protocols",
		len(colls), len(mixes), len(gs), len(protos))
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) []int {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmsweep: bad integer %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
