package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tcc/internal/collections"
	"tcc/internal/core"
	"tcc/internal/obs/metrics"
	"tcc/internal/stm"
)

// realScrape renders the process-global registry — the stm package's
// init has registered every STM family against it — after running
// enough transactions to populate it, plus the monitor and a named
// collection so the required collection/monitor families exist.
func realScrape(t *testing.T) []byte {
	t.Helper()
	metrics.SetEnabled(true)
	defer metrics.SetEnabled(false)

	// The monitor registers tcc_monitor_*, a named collection
	// registers tcc_collection_violations_total.
	metrics.NewMonitor(metrics.Default, metrics.MonitorConfig{}).Tick()
	core.NewTransactionalQueue[int](collections.NewLinkedQueue[int]()).SetName("check.queue")

	th := stm.NewThread(&stm.RealClock{}, 1)
	v := stm.NewVar(0)
	for i := 0; i < 10; i++ {
		if err := th.Atomic(func(tx *stm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	var b bytes.Buffer
	if err := metrics.WritePrometheus(&b, metrics.Default); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestCheckPromAcceptsRealExposition(t *testing.T) {
	if err := checkProm(bytes.NewReader(realScrape(t))); err != nil {
		t.Errorf("checkProm rejected a real exposition: %v", err)
	}
}

func TestCheckPromURL(t *testing.T) {
	scrape := realScrape(t)
	srv := httptest.NewServer(metrics.NewMux(metrics.Default))
	defer srv.Close()
	_ = scrape // registry already populated by realScrape
	if err := checkPromURL(srv.URL + "/metrics"); err != nil {
		t.Errorf("checkPromURL rejected a live endpoint: %v", err)
	}
}

func TestCheckPromRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "required family"},
		{
			"sample before type",
			"orphan_total 3\n",
			"precedes its # TYPE",
		},
		{
			"non-numeric value",
			"# HELP x_total x\n# TYPE x_total counter\nx_total pear\n",
			"non-numeric",
		},
		{
			"family without samples",
			"# HELP x_total x\n# TYPE x_total counter\n",
			"no samples",
		},
		{
			"type without help",
			"# TYPE x_total counter\nx_total 1\n",
			"no # HELP",
		},
		{
			"unbalanced braces",
			"# HELP x x\n# TYPE x gauge\nx{k=\"v\" 1\n",
			"unbalanced",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := checkProm(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("checkProm(%q) = %v, want error containing %q", c.in, err, c.want)
			}
		})
	}
}

// TestCheckPromWindowDecayVisible drives the registry clock past the
// window and confirms the scrape's windowed families drop to zero
// while totals survive — the end-to-end view of rotation.
func TestCheckPromWindowDecayVisible(t *testing.T) {
	r := metrics.NewRegistry(time.Second)
	c := r.Counter("decay_total", "d")
	t0 := time.Unix(3000, 0)
	r.Advance(t0)
	c.Add(5)
	r.Advance(t0.Add(10 * time.Second))
	var b bytes.Buffer
	if err := metrics.WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "decay_total 5") {
		t.Fatalf("cumulative total lost:\n%s", out)
	}
	if !strings.Contains(out, "decay_total_window 0") {
		t.Fatalf("windowed view did not decay:\n%s", out)
	}
}
