package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tcc/internal/obs/metrics"
)

// requiredFamilies are the metric families a live tccbench
// -metrics-addr process must expose. Names come from the same
// constants the instrumentation registers under, so the validator
// cannot drift from the STM.
var requiredFamilies = []string{
	metrics.StmCommits,
	metrics.StmAborts,
	metrics.StmRetries,
	metrics.StmSnapshotCommits,
	metrics.StmGuardWaits,
	metrics.StmGuardWaitNs,
	metrics.StmClock,
	metrics.StmTxLatency,
	metrics.CollectionViolations,
	metrics.MonitorAbortRate,
	metrics.MonitorAlert,
}

// checkPromURL fetches url and validates the scrape with checkProm.
func checkPromURL(url string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		return fmt.Errorf("Content-Type %q is not the 0.0.4 text format", ct)
	}
	return checkProm(resp.Body)
}

// promFamily is one parsed metric family from a text exposition.
type promFamily struct {
	typ     string
	help    bool
	samples int
}

// checkProm parses a Prometheus 0.0.4 text exposition (a small
// tracecheck-style parser, not a client library): every sample must
// be syntactically well-formed and belong to a family announced by a
// preceding # TYPE line, every family needs # HELP and at least one
// sample, summaries need their quantile/_sum/_count series, and the
// STM's required families must all be present.
func checkProm(r io.Reader) error {
	fams := map[string]*promFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			name := fields[2]
			f := fams[name]
			if f == nil {
				f = &promFamily{}
				fams[name] = f
			}
			if fields[1] == "HELP" {
				f.help = true
			} else {
				f.typ = fields[3]
			}
			continue
		}
		name, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		base := sampleFamily(name, fams)
		f := fams[base]
		if f == nil || f.typ == "" {
			return fmt.Errorf("line %d: sample %q precedes its # TYPE line", line, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: sample %q has non-numeric value %q", line, name, value)
		}
		f.samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, f := range fams {
		if !f.help {
			return fmt.Errorf("family %s has no # HELP line", name)
		}
		if f.samples == 0 {
			return fmt.Errorf("family %s announced but has no samples", name)
		}
	}
	for _, name := range requiredFamilies {
		if fams[name] == nil {
			return fmt.Errorf("required family %s missing from scrape", name)
		}
	}
	return nil
}

// parseSample splits a sample line into its metric name (label block
// stripped) and value, validating the basic shape.
func parseSample(text string) (name, value string, err error) {
	rest := text
	if i := strings.IndexByte(text, '{'); i >= 0 {
		j := strings.LastIndexByte(text, '}')
		if j < i {
			return "", "", fmt.Errorf("unbalanced label braces in %q", text)
		}
		name = text[:i]
		rest = strings.TrimSpace(text[j+1:])
	} else {
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return "", "", fmt.Errorf("sample %q is not 'name value'", text)
		}
		return fields[0], fields[1], nil
	}
	if name == "" || rest == "" {
		return "", "", fmt.Errorf("sample %q missing name or value", text)
	}
	return name, rest, nil
}

// sampleFamily maps a sample's metric name back to its family:
// summary _sum/_count samples belong to the base family.
func sampleFamily(name string, fams map[string]*promFamily) string {
	if fams[name] != nil {
		return name
	}
	for _, suffix := range []string{"_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && fams[base] != nil {
			return base
		}
	}
	return name
}
