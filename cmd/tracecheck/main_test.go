package main

import (
	"bytes"
	"strings"
	"testing"

	"tcc/internal/harness"
	"tcc/internal/obs"
	"tcc/internal/stm"
)

// contendedArtifacts produces a real report and trace from a contended
// run, the same artifacts verify.sh feeds tracecheck.
func contendedArtifacts(t *testing.T) (stats, trace []byte) {
	t.Helper()
	rec := obs.NewRecorder(obs.DefaultRecorderCap)
	obs.SetTracer(rec)
	defer obs.SetTracer(nil)

	counter := stm.NewVar(0).SetLabel("check.counter")
	cfg := harness.Config{
		Name: "contended",
		Setup: func(pl harness.Platform) func(w *harness.Worker) {
			return func(w *harness.Worker) {
				_ = w.Thread.Atomic(func(tx *stm.Tx) error {
					w.Compute(32)
					counter.Set(tx, counter.Get(tx)+1)
					w.Compute(32)
					return nil
				})
			}
		},
	}
	fig := harness.RunFigureOpts("check", []harness.Config{cfg}, []int{4}, 256, 3, harness.FigureOptions{Profile: true})
	obs.SetTracer(nil)

	var sb, tb bytes.Buffer
	if err := harness.BuildReport("check", fig).WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	return sb.Bytes(), tb.Bytes()
}

func TestCheckRealArtifacts(t *testing.T) {
	stats, trace := contendedArtifacts(t)
	if err := checkStats(bytes.NewReader(stats)); err != nil {
		t.Errorf("checkStats rejected a real report: %v", err)
	}
	if err := checkTrace(bytes.NewReader(trace)); err != nil {
		t.Errorf("checkTrace rejected a real trace: %v", err)
	}
}

func TestCheckStatsRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"garbage", "not json", "not a harness report"},
		{"empty", `{}`, "no figures"},
		{"no series", `{"figures":[{"title":"f","cpus":[1],"series":[]}]}`, "no series"},
		{"run mismatch", `{"figures":[{"title":"f","cpus":[1,2],"series":[{"name":"s","runs":[{"cpus":1}]}]}]}`, "runs for"},
		{"unprofiled", `{"figures":[{"title":"f","cpus":[1],"series":[{"name":"s","runs":[{"cpus":1}]}]}]}`, "no profiled runs"},
		{"empty heatmap", `{"figures":[{"title":"f","cpus":[1],"series":[{"name":"s","runs":[{"cpus":1,"profile":{"begins":5}}]}]}]}`, "heatmap is empty"},
	}
	for _, c := range cases {
		err := checkStats(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestCheckTraceRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"garbage", "not json", "not trace_event JSON"},
		{"empty", `{"traceEvents":[]}`, "no metadata"},
		{"meta only", `{"traceEvents":[{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0}]}`, "no transaction events"},
		{"missing fields", `{"traceEvents":[{"name":"tx","ph":"X"}]}`, "missing ts/pid/tid"},
		{"bad phase", `{"traceEvents":[{"name":"tx","ph":"B","ts":0,"pid":1,"tid":0}]}`, "unsupported phase"},
	}
	for _, c := range cases {
		err := checkTrace(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}
