// Command tracecheck validates tccbench's exported observability
// artifacts, so verify.sh can gate on them without a human loading the
// files into a viewer:
//
//	tracecheck -stats run.json     # harness.Report: decodes, has figures,
//	                               # and ≥1 profiled run with a non-empty
//	                               # conflict heatmap
//	tracecheck -trace trace.json   # Chrome trace_event JSON: decodes, has
//	                               # metadata plus ≥1 event, well-formed
//	                               # phases
//	tracecheck -prom-url URL       # live /metrics endpoint: scrape parses
//	                               # as the 0.0.4 text format and carries
//	                               # every family the STM registers
//
// All flags may be given at once. Exit status 0 means all supplied
// artifacts validate; any failure prints a reason and exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"tcc/internal/harness"
)

func main() {
	var (
		statsFlag = flag.String("stats", "", "validate a -stats-json report `file`")
		traceFlag = flag.String("trace", "", "validate a -trace Chrome trace `file`")
		promFlag  = flag.String("prom-url", "", "validate a live Prometheus text endpoint at `url`")
	)
	flag.Parse()
	if *statsFlag == "" && *traceFlag == "" && *promFlag == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: at least one of -stats, -trace or -prom-url is required")
		os.Exit(2)
	}
	check := func(path string, fn func(io.Reader) error) {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	if *statsFlag != "" {
		check(*statsFlag, checkStats)
	}
	if *traceFlag != "" {
		check(*traceFlag, checkTrace)
	}
	if *promFlag != "" {
		if err := checkPromURL(*promFlag); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *promFlag, err)
			os.Exit(1)
		}
	}
	fmt.Println("tracecheck: ok")
}

// checkStats validates a harness.Report: it must decode, contain at
// least one figure, and — since verify.sh runs tccbench under
// contention — at least one profiled run whose heatmap attributes
// rollbacks to a named hotspot.
func checkStats(r io.Reader) error {
	var rep harness.Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return fmt.Errorf("not a harness report: %w", err)
	}
	if len(rep.Figures) == 0 {
		return fmt.Errorf("report has no figures")
	}
	profiled, hotspots := 0, 0
	for _, f := range rep.Figures {
		if len(f.Series) == 0 {
			return fmt.Errorf("figure %q has no series", f.Title)
		}
		for _, s := range f.Series {
			if len(s.Runs) != len(f.CPUs) {
				return fmt.Errorf("figure %q series %q: %d runs for %d CPU counts",
					f.Title, s.Name, len(s.Runs), len(f.CPUs))
			}
			for _, run := range s.Runs {
				if run.Profile == nil {
					continue
				}
				profiled++
				hotspots += len(run.Profile.Hotspots)
			}
		}
	}
	if profiled == 0 {
		return fmt.Errorf("report has no profiled runs (was tccbench run with -profile or -stats-json?)")
	}
	if hotspots == 0 {
		return fmt.Errorf("no run attributed any conflicts: heatmap is empty under contention")
	}
	return nil
}

// traceFile is the subset of the Chrome trace_event format tracecheck
// validates.
type traceFile struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Ts   *int64 `json:"ts"`
		Pid  *int64 `json:"pid"`
		Tid  *int64 `json:"tid"`
	} `json:"traceEvents"`
}

// checkTrace validates Chrome trace_event JSON: decodable, has the
// process metadata a viewer needs, and at least one transaction event
// with the required fields.
func checkTrace(r io.Reader) error {
	var tf traceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return fmt.Errorf("not trace_event JSON: %w", err)
	}
	meta, events := 0, 0
	for i, e := range tf.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			return fmt.Errorf("event %d missing name/ph", i)
		}
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			return fmt.Errorf("event %d (%s) missing ts/pid/tid", i, e.Name)
		}
		switch e.Ph {
		case "M":
			meta++
		case "X", "i", "I":
			events++
		default:
			return fmt.Errorf("event %d (%s) has unsupported phase %q", i, e.Name, e.Ph)
		}
	}
	if meta == 0 {
		return fmt.Errorf("trace has no metadata events (process/thread names)")
	}
	if events == 0 {
		return fmt.Errorf("trace has no transaction events")
	}
	return nil
}
