module tcc

go 1.24
