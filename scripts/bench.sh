#!/usr/bin/env bash
# scripts/bench.sh — run the STM microbenchmarks and the figure/real
# benches and write the machine-readable perf trajectory file
# BENCH_stm.json (via cmd/benchjson). Commit the refreshed file with
# perf-relevant PRs; git history of BENCH_stm.json is the trajectory.
#
# Not part of the default verify.sh gate (benchmarks are minutes, the
# gate is seconds); run it as `./verify.sh bench` or directly.
#
# Environment knobs:
#   BENCH_TIME   go test -benchtime value   (default 300ms)
#   BENCH_COUNT  go test -count value       (default 1)
#   BENCH_OUT    output file                (default BENCH_stm.json)
#   BENCH_NOTE   free-form note embedded in the report (e.g. baseline
#                numbers the run should be compared against)
set -euo pipefail
cd "$(dirname "$0")/.."

time=${BENCH_TIME:-300ms}
count=${BENCH_COUNT:-1}
out=${BENCH_OUT:-BENCH_stm.json}
note=${BENCH_NOTE:-}

{
  # STM hot-path microbenchmarks (allocation-reporting).
  go test -run '^$' -bench 'BenchmarkSTM' -benchmem -benchtime "$time" -count "$count" ./internal/stm
  # Wall-clock operation benches, simulator figure regenerations, and
  # the root-level STM demonstration benches: the striped hot-map pair,
  # the range-striped sorted-map pair (BenchmarkSTMHotSortedMap[SingleGuard]),
  # and the segmented-queue pair (BenchmarkSTMHotQueueDisjointLanes[SingleLane]).
  go test -run '^$' -bench 'BenchmarkReal|BenchmarkFigure|BenchmarkSTM' -benchmem -benchtime "$time" -count "$count" .
  # Synchrobench-style protocol sweep (protocol × collection × update
  # ratio × goroutine count), including the striped-sortedmap and
  # segmented-queue (lanequeue) columns; its stdout is bench-format
  # text, so it merges into the same report. The human summary goes to
  # stderr with the rest of the bench chatter.
  go run ./cmd/stmsweep
} | tee /dev/stderr | go run ./cmd/benchjson -note "$note" > "$out"

echo "bench: wrote $out" >&2
